// Router: the paper's §5 case study, assembled from its building blocks
// rather than through the harness — a 4x4 packet router whose per-packet
// checksum is verified by software on the ISS.
//
// Run with: go run ./examples/router [-scheme gdb-kernel|gdb-wrapper|driver-kernel]
package main

import (
	"flag"
	"fmt"
	"log"

	"cosim/internal/core"
	"cosim/internal/harness"
	"cosim/internal/sim"
)

func main() {
	scheme := flag.String("scheme", "gdb-kernel", "co-simulation scheme")
	delay := flag.String("delay", "20us", "inter-packet delay")
	errors := flag.Float64("errors", 0.05, "corrupted packet injection rate")
	flag.Parse()

	s, err := harness.ParseScheme(*scheme)
	if err != nil {
		log.Fatal(err)
	}
	d, err := sim.ParseTime(*delay)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("router case study, %v scheme, %v inter-packet delay, %.0f%% corrupt traffic\n",
		s, d, *errors*100)

	res, err := harness.Run(harness.Params{
		Scheme:    s,
		Transport: core.TransportTCP,
		SimTime:   5 * sim.MS,
		Delay:     d,
		ErrorRate: *errors,
		Seed:      2026,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsimulated %v in %v of wall time\n", res.Simulated, res.Wall)
	fmt.Printf("  generated: %4d packets (%d deliberately corrupted)\n", res.Generated, res.BadSent)
	fmt.Printf("  forwarded: %4d (%.1f%%)\n", res.Forwarded, res.ForwardedPct())
	fmt.Printf("  corrupted packets caught by the CPU checksum: %d\n", res.Corrupted)
	fmt.Printf("  dropped at full input queues: %d\n", res.InDrops)
	fmt.Printf("  consumer verified %d packets end-to-end (%d bad, %d misrouted)\n",
		res.Received, res.BadContent, res.Misrouted)
	fmt.Printf("  mean ingress->egress latency: %v\n", res.MeanLat)
	fmt.Printf("  guest software executed %d instructions\n", res.GuestInstructions)

	if res.BadContent != 0 || res.Misrouted != 0 {
		log.Fatal("integrity check failed")
	}
	if res.Corrupted == 0 && res.BadSent > 0 {
		log.Fatal("corrupted packets slipped through the checksum")
	}
	fmt.Println("\nintegrity OK: every forwarded packet was valid and correctly routed")
}
