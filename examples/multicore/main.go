// Multicore: the "Multi-Processor SoC" of the paper's title — two ISSs
// co-simulated with one SystemC kernel, forming a processing pipeline,
// with results transported over the shared arbitrated system bus model.
//
// CPU0 runs a checksum stage (as in the router case study); CPU1 runs a
// scrambler stage (XOR whitening). A hardware DMA thread moves each
// stage's output into the bus-attached memory, where a checker verifies
// the pipeline end-to-end. Both CPUs are attached with the GDB-Kernel
// scheme under distinct port names.
//
// Run with: go run ./examples/multicore
package main

import (
	"fmt"
	"log"

	"cosim/internal/asm"
	"cosim/internal/bus"
	"cosim/internal/core"
	"cosim/internal/iss"
	"cosim/internal/sim"
)

// stage0Src computes a 16-bit checksum of a value (CPU0).
const stage0Src = `
_start:
    la   s0, in0
    la   s1, out0
loop:
bp_in:
    lw   a0, 0(s0)
    ; fold the word into 16 bits, ones'-complement style
    srli t0, a0, 16
    andi t1, a0, 0xFFFF
    add  t0, t0, t1
    srli t1, t0, 16
    add  t0, t0, t1
    andi t0, t0, 0xFFFF
    sw   t0, 0(s1)
bp_out:
    nop
    j    loop
.data
.align 4
in0:  .word 0
out0: .word 0
`

// stage1Src scrambles a value with a keyed XOR and rotation (CPU1).
const stage1Src = `
_start:
    la   s0, in1
    la   s1, out1
    li   s2, 0xA5A55A5A
loop:
bp_in:
    lw   a0, 0(s0)
    xor  a0, a0, s2
    slli t0, a0, 7
    srli t1, a0, 25
    or   a0, t0, t1
    sw   a0, 0(s1)
bp_out:
    nop
    j    loop
.data
.align 4
in1:  .word 0
out1: .word 0
`

// scramble mirrors stage1Src for verification.
func scramble(v uint32) uint32 {
	v ^= 0xa5a55a5a
	return v<<7 | v>>25
}

// fold mirrors stage0Src.
func fold(v uint32) uint32 {
	s := (v >> 16) + (v & 0xffff)
	s += s >> 16
	return s & 0xffff
}

// attachCPU boots a guest and couples it to the kernel with GDB-Kernel
// under a port-name prefix.
func attachCPU(k *sim.Kernel, name, src string) (*core.GDBKernel, *iss.CPU, error) {
	im, err := asm.Assemble(asm.Options{DataBase: 0x10000},
		asm.Source{Name: name + ".s", Text: src})
	if err != nil {
		return nil, nil, err
	}
	ram := iss.NewRAM(1 << 20)
	if err := im.LoadInto(ram); err != nil {
		return nil, nil, err
	}
	cpu := iss.New(iss.NewSystemBus(ram))
	cpu.Reset(im.Entry)
	target, err := core.StartGDBTarget(cpu, core.TransportPipe)
	if err != nil {
		return nil, nil, err
	}
	g, err := core.NewGDBKernel(k, target.HostConn, im, core.GDBKernelOptions{
		CommonOptions: core.CommonOptions{CPUPeriod: sim.NS, SkewBound: 10 * sim.US},
		Bindings: []core.VarBinding{
			{Port: name + ".in", Var: "in0", Size: 4, Dir: core.ToISS, Label: "bp_in"},
			{Port: name + ".out", Var: "out0", Size: 4, Dir: core.ToSystemC, Label: "bp_out"},
		},
	})
	return g, cpu, err
}

func main() {
	k := sim.NewKernel("mpsoc")
	clk := sim.NewClock(k, "clk", 10*sim.NS)

	// Fix up variable names per guest: stage1 uses in1/out1.
	stage1 := stage1Src
	g0, cpu0, err := attachCPU(k, "cpu0", stage0Src)
	if err != nil {
		log.Fatal(err)
	}
	// attachCPU binds in0/out0; stage1's variables are named in1/out1,
	// so bind it explicitly.
	im1, err := asm.Assemble(asm.Options{DataBase: 0x10000},
		asm.Source{Name: "cpu1.s", Text: stage1})
	if err != nil {
		log.Fatal(err)
	}
	ram1 := iss.NewRAM(1 << 20)
	if err := im1.LoadInto(ram1); err != nil {
		log.Fatal(err)
	}
	cpu1 := iss.New(iss.NewSystemBus(ram1))
	cpu1.Reset(im1.Entry)
	target1, err := core.StartGDBTarget(cpu1, core.TransportPipe)
	if err != nil {
		log.Fatal(err)
	}
	g1, err := core.NewGDBKernel(k, target1.HostConn, im1, core.GDBKernelOptions{
		CommonOptions: core.CommonOptions{CPUPeriod: sim.NS, SkewBound: 10 * sim.US},
		Bindings: []core.VarBinding{
			{Port: "cpu1.in", Var: "in1", Size: 4, Dir: core.ToISS, Label: "bp_in"},
			{Port: "cpu1.out", Var: "out1", Size: 4, Dir: core.ToSystemC, Label: "bp_out"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Shared system bus with a result memory; the pipeline DMA is
	// master 0, a background "scrubber" master 1 creates contention.
	sysBus := bus.New(k, "sysbus", bus.Config{Clock: clk, Masters: 2, CyclesPerTransaction: 2})
	mem := bus.NewMemory("results", 4096)
	if err := sysBus.Map(0x2000_0000, mem); err != nil {
		log.Fatal(err)
	}
	k.Thread("scrubber", func(c *sim.Ctx) {
		for i := uint32(0); ; i++ {
			_, _ = sysBus.Read(c, 1, 0x2000_0000+(i%64)*4)
			c.WaitTime(500 * sim.NS)
		}
	})

	in0, _ := k.IssOutPort("cpu0.in")
	out0, _ := k.IssInPort("cpu0.out")
	in1, _ := k.IssOutPort("cpu1.in")
	out1, _ := k.IssInPort("cpu1.out")

	// The pipeline driver: value -> CPU0 (fold) -> CPU1 (scramble) ->
	// DMA into the bus memory.
	inputs := []uint32{0xdeadbeef, 0x12345678, 0x00000001, 0xffffffff, 0xcafef00d, 42}
	k.Thread("pipeline", func(c *sim.Ctx) {
		for i, v := range inputs {
			in0.WriteUint32(v)
			c.Wait(out0.Event())
			stage0 := out0.Uint32()

			in1.WriteUint32(stage0)
			c.Wait(out1.Event())
			stage1v := out1.Uint32()

			if err := sysBus.Write(c, 0, 0x2000_0000+uint32(i)*4, stage1v); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("t=%-9v %#08x --cpu0--> %#06x --cpu1--> %#08x\n",
				c.Now(), v, stage0, stage1v)
		}
		k.Stop()
	})

	if err := k.Run(sim.MaxTime); err != nil && err != sim.ErrDeadlock {
		log.Fatal(err)
	}
	k.Shutdown()
	for _, g := range []*core.GDBKernel{g0, g1} {
		if err := g.Err(); err != nil {
			log.Fatal(err)
		}
	}

	// Verify the whole pipeline against the Go reference models.
	for i, v := range inputs {
		want := scramble(fold(v))
		got, err := mem.Read(uint32(i)*4, 4)
		if err != nil {
			log.Fatal(err)
		}
		if got != want {
			log.Fatalf("result[%d] = %#x, want %#x", i, got, want)
		}
	}
	fmt.Printf("\npipeline verified for %d values\n", len(inputs))
	fmt.Printf("cpu0 executed %d instructions, cpu1 %d; bus carried %d transactions (%.0f%% utilized)\n",
		cpu0.Instructions(), cpu1.Instructions(), sysBus.Granted(), 100*sysBus.Utilization())
}
