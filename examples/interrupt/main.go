// Interrupt: the Driver-Kernel scheme's headline capability (§4) — a
// SystemC device model raising interrupts that are serviced by an ISR
// registered in the RTOS running on the ISS.
//
// A "sensor" hardware model samples a value every 100us of simulated
// time, publishes it on an iss_out port and raises interrupt 5. The
// μKOS guest's ISR wakes the application thread, which READs the sample
// through the device driver, accumulates statistics and WRITEs the
// running maximum back — all through the paper's socket protocol.
//
// Run with: go run ./examples/interrupt
package main

import (
	"fmt"
	"log"
	"os"

	"cosim/internal/asm"
	"cosim/internal/core"
	"cosim/internal/dev"
	"cosim/internal/rtos"
	"cosim/internal/sim"
)

const guestSrc = `
.equ INT_SAMPLE, 5

main:
    la   a0, sample_isr
    call cosim_register_isr
    la   a0, banner
    call k_puts

mloop:
wait_sample:
    di
    la   t0, flag
    lw   t1, 0(t0)
    bnez t1, have_sample
    wfi
    ei
    j    wait_sample
have_sample:
    ei
    la   t0, flag
    sw   zero, 0(t0)

    ; read the sample from the SystemC sensor model
    la   a0, port_sample
    addi a1, zero, 6
    la   a2, sample
    addi a3, zero, 4
    call cosim_read

    ; track the running maximum
    la   t0, sample
    lw   t1, 0(t0)
    la   t2, maxval
    lw   t3, 0(t2)
    bgeu t3, t1, not_bigger
    sw   t1, 0(t2)
not_bigger:

    ; report the maximum back to the hardware
    la   a0, port_max
    addi a1, zero, 3
    la   a2, maxval
    addi a3, zero, 4
    call cosim_write
    j    mloop

sample_isr:
    addi t1, zero, INT_SAMPLE
    bne  a0, t1, isr_done
    la   t0, flag
    addi t2, zero, 1
    sw   t2, 0(t0)
isr_done:
    ret

.data
banner:      .asciz "sensor monitor ready\n"
port_sample: .asciz "sample"
port_max:    .asciz "max"
.align 4
flag:   .word 0
sample: .word 0
maxval: .word 0
`

func main() {
	im, err := rtos.Build(asm.Source{Name: "monitor.s", Text: guestSrc})
	if err != nil {
		log.Fatal(err)
	}
	plat := dev.NewPlatform(0, os.Stdout)
	if err := im.LoadInto(plat.RAM); err != nil {
		log.Fatal(err)
	}
	plat.CPU.Reset(im.Entry)

	target, err := core.ConnectDriverTarget(plat, core.TransportPipe)
	if err != nil {
		log.Fatal(err)
	}
	runner := rtos.NewRunner(plat)
	runner.Start()
	defer runner.Stop()

	k := sim.NewKernel("sensor-soc")
	sim.NewClock(k, "clk", 100*sim.NS)
	dk, err := core.NewDriverKernel(k, target.DataHost, target.IRQHost, core.DriverKernelOptions{
		CommonOptions: core.CommonOptions{CPUPeriod: 10 * sim.NS, SkewBound: 10 * sim.US},
		Ports: []core.VarBinding{
			{Port: "sample", Dir: core.ToISS},
			{Port: "max", Dir: core.ToSystemC},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	samplePort, _ := k.IssOutPort("sample")
	maxPort, _ := k.IssInPort("max")

	// The sensor model: a pseudo-random waveform sampled every 100us.
	samples := []uint32{17, 4, 99, 23, 56, 142, 8, 141, 77, 3}
	k.Thread("sensor", func(c *sim.Ctx) {
		for i, v := range samples {
			c.WaitTime(100 * sim.US)
			samplePort.WriteUint32(v)
			dk.RaiseInterrupt(5)
			c.Wait(maxPort.Event())
			fmt.Printf("t=%-8v sample[%d]=%-4d guest reports max=%d\n",
				c.Now(), i, v, maxPort.Uint32())
		}
		k.Stop()
	})

	if err := k.Run(sim.MaxTime); err != nil {
		log.Fatal(err)
	}
	k.Shutdown()
	if err := dk.Err(); err != nil {
		log.Fatal(err)
	}
	if got := maxPort.Uint32(); got != 142 {
		log.Fatalf("final max = %d, want 142", got)
	}
	fmt.Printf("\n%d interrupts were raised by hardware and serviced by the guest ISR\n",
		dk.Stats().IntsNotified)
	fmt.Printf("guest console: %q\n", plat.Console.Output())
}
