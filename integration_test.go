package cosim

// Cross-module integration tests: scenarios that span the whole stack
// (toolchain -> ISS -> RTOS -> co-simulation schemes) rather than a
// single package.

import (
	"testing"

	"cosim/internal/asm"
	"cosim/internal/core"
	"cosim/internal/dev"
	"cosim/internal/gdb"
	"cosim/internal/harness"
	"cosim/internal/iss"
	"cosim/internal/rtos"
	"cosim/internal/sim"
)

// TestSchemeFunctionalEquivalence: at low load all three co-simulation
// schemes must do exactly the same work — same packets generated, all
// forwarded, none corrupted. The schemes differ in performance, never
// in function.
func TestSchemeFunctionalEquivalence(t *testing.T) {
	type outcome struct {
		generated, forwarded, received uint64
	}
	var results []outcome
	for _, s := range harness.Schemes {
		res, err := harness.Run(harness.Params{
			Scheme:           s,
			Transport:        core.TransportPipe,
			SimTime:          20 * sim.MS,
			Delay:            200 * sim.US,
			PacketsPerSource: 10,
			Seed:             77,
		})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.BadContent != 0 || res.Misrouted != 0 {
			t.Fatalf("%v: integrity violation %+v", s, res)
		}
		results = append(results, outcome{res.Generated, res.Forwarded, res.Received})
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("schemes disagree: %v vs %v", results[0], results[i])
		}
	}
	if results[0].generated != 40 || results[0].forwarded != 40 {
		t.Fatalf("expected all 40 packets through: %+v", results[0])
	}
}

// TestWrapperQuantumSweep: the lock-step wrapper must be functionally
// identical across quantum sizes — the quantum is a speed/accuracy
// knob, not a semantic one.
func TestWrapperQuantumSweep(t *testing.T) {
	for _, quantum := range []uint64{1, 4, 32, 256} {
		res, err := harness.Run(harness.Params{
			Scheme:           harness.GDBWrapper,
			Transport:        core.TransportPipe,
			SimTime:          10 * sim.MS,
			Delay:            300 * sim.US,
			PacketsPerSource: 4,
			InstrPerCycle:    quantum,
			Seed:             9,
		})
		if err != nil {
			t.Fatalf("quantum %d: %v", quantum, err)
		}
		if res.Forwarded != 16 || res.BadContent != 0 {
			t.Fatalf("quantum %d: forwarded %d of 16 (bad %d)", quantum, res.Forwarded, res.BadContent)
		}
	}
}

// TestGuestDeterminismAcrossRuns: the same RTOS image executes the
// identical instruction stream on every run when driven by a
// deterministic host sequence.
func TestGuestDeterminismAcrossRuns(t *testing.T) {
	src := `
main:
    addi s0, zero, 10
loop:
    beqz s0, out
    la   a0, msg
    call k_puts
    addi s0, s0, -1
    j    loop
out:
    halt
.data
msg: .asciz "tick\n"
`
	run := func() (uint64, uint64, string) {
		im, err := rtos.Build(asm.Source{Name: "d.s", Text: src})
		if err != nil {
			t.Fatal(err)
		}
		p := dev.NewPlatform(0, nil)
		if err := im.LoadInto(p.RAM); err != nil {
			t.Fatal(err)
		}
		p.CPU.Reset(im.Entry)
		stop, _ := p.Run(1_000_000)
		if stop != iss.StopHalt {
			t.Fatalf("stop = %v", stop)
		}
		return p.CPU.Instructions(), p.CPU.Cycles(), p.Console.Output()
	}
	i1, c1, o1 := run()
	i2, c2, o2 := run()
	if i1 != i2 || c1 != c2 || o1 != o2 {
		t.Fatalf("nondeterministic guest: (%d,%d) vs (%d,%d)", i1, c1, i2, c2)
	}
	if len(o1) != 10*len("tick\n") {
		t.Fatalf("console = %q", o1)
	}
}

// TestSequentialDebugSessions: a CPU can be served by consecutive stub
// sessions (detach, then reattach a fresh stub), as when a developer
// reconnects gdb.
func TestSequentialDebugSessions(t *testing.T) {
	im, err := asm.Assemble(asm.Options{}, asm.Source{Name: "p.s", Text: `
_start:
    addi s0, zero, 1
mid:
    addi s0, s0, 10
    halt
`})
	if err != nil {
		t.Fatal(err)
	}
	ram := iss.NewRAM(1 << 20)
	_ = im.LoadInto(ram)
	cpu := iss.New(iss.NewSystemBus(ram))
	cpu.Reset(im.Entry)

	// Session 1: step once, detach.
	t1, err := core.StartGDBTarget(cpu, core.TransportPipe)
	if err != nil {
		t.Fatal(err)
	}
	// (client side)
	cl1 := newClient(t, t1)
	if _, err := cl1.Step(); err != nil {
		t.Fatal(err)
	}
	if err := cl1.Detach(); err != nil {
		t.Fatal(err)
	}
	_ = t1.Wait()

	// Session 2: fresh stub on the same CPU, run to completion.
	t2, err := core.StartGDBTarget(cpu, core.TransportPipe)
	if err != nil {
		t.Fatal(err)
	}
	cl2 := newClient(t, t2)
	if err := cl2.Continue(); err != nil {
		t.Fatal(err)
	}
	ev, err := cl2.WaitStop()
	if err != nil || !ev.Exited {
		t.Fatalf("final stop = %+v, %v", ev, err)
	}
	if cpu.Regs[4] != 11 {
		t.Fatalf("s0 = %d", cpu.Regs[4])
	}
	_ = cl2.Kill()
}

// TestVCDFromCoSimulation: a full co-simulation can be traced to VCD
// and the dump contains value changes of the queue occupancy probes.
func TestVCDFromCoSimulation(t *testing.T) {
	var vcd sbWriter
	_, err := harness.Run(harness.Params{
		Scheme:    harness.DriverKernel,
		Transport: core.TransportPipe,
		SimTime:   2 * sim.MS,
		Delay:     10 * sim.US, // saturate so occupancy actually changes
		Seed:      4,
		Trace:     &vcd,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !vcd.contains("$var wire 8") || !vcd.contains("#") {
		t.Fatal("VCD missing variable changes")
	}
}

// --- small helpers ---

type sbWriter struct{ b []byte }

func (w *sbWriter) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }
func (w *sbWriter) contains(s string) bool {
	return len(s) == 0 || stringsContains(string(w.b), s)
}

func stringsContains(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

func newClient(t *testing.T, target *core.GDBTarget) *gdb.Client {
	t.Helper()
	return gdb.NewClient(target.HostConn, gdb.ClientOptions{})
}
