module cosim

go 1.22
