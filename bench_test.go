package cosim

// Benchmark harness regenerating every table and figure of the paper's
// evaluation (§5), plus ablations isolating the design choices that
// produce the performance differences. Benchmarks use scaled-down
// simulated durations so `go test -bench` stays laptop-friendly;
// cmd/benchtab -full runs the paper-scale durations.
//
//	BenchmarkTable1/*              — Table 1 (wall clock per scheme per simulated time)
//	BenchmarkFigure7/*             — Figure 7 (% forwarded vs inter-packet delay)
//	BenchmarkAblationPolling       — A1: lock-step qRun round trip vs in-kernel poll
//	BenchmarkAblationTransport     — A2: RSP-framed transfer vs raw driver message
//	BenchmarkAblationInterruptGDB  — A3: single-stepping cost (why GDB-Kernel can't do interrupts)

import (
	"fmt"
	"io"
	"testing"
	"time"

	"cosim/internal/asm"
	"cosim/internal/core"
	"cosim/internal/gdb"
	"cosim/internal/harness"
	"cosim/internal/iss"
	"cosim/internal/router"
	"cosim/internal/sim"
)

// benchParams are the common Table 1 / Figure 7 conditions.
func benchParams() harness.Params {
	return harness.Params{
		Transport: core.TransportTCP,
		Delay:     20 * sim.US,
		Seed:      1,
	}
}

// BenchmarkTable1 regenerates Table 1: wall-clock co-simulation time
// for each scheme at increasing simulated durations (scaled: the paper
// used 1000/10000/100000 ms on 2004 hardware; we sweep 2/10/50 ms —
// same workload structure, same scheme ordering).
func BenchmarkTable1(b *testing.B) {
	for _, scheme := range harness.Schemes {
		for _, simTime := range []sim.Time{2 * sim.MS, 10 * sim.MS, 50 * sim.MS} {
			name := fmt.Sprintf("%s/sim=%s", scheme, simTime)
			b.Run(name, func(b *testing.B) {
				p := benchParams()
				p.Scheme = scheme
				p.SimTime = simTime
				for i := 0; i < b.N; i++ {
					res, err := harness.Run(p)
					if err != nil {
						b.Fatal(err)
					}
					if res.Forwarded == 0 {
						b.Fatal("no traffic forwarded")
					}
					b.ReportMetric(float64(res.Forwarded)/float64(b.N), "packets")
				}
			})
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7: the forwarded percentage (as
// a reported metric) for the two proposed schemes across inter-packet
// delays. The Driver-Kernel OS overhead pushes its curve down at small
// delays.
func BenchmarkFigure7(b *testing.B) {
	for _, scheme := range []harness.Scheme{harness.GDBKernel, harness.DriverKernel} {
		for _, delay := range []sim.Time{5 * sim.US, 10 * sim.US, 20 * sim.US, 50 * sim.US, 100 * sim.US} {
			name := fmt.Sprintf("%s/delay=%s", scheme, delay)
			b.Run(name, func(b *testing.B) {
				p := benchParams()
				p.Scheme = scheme
				p.Delay = delay
				p.SimTime = 2 * sim.MS
				var pct float64
				for i := 0; i < b.N; i++ {
					res, err := harness.Run(p)
					if err != nil {
						b.Fatal(err)
					}
					pct = res.ForwardedPct()
				}
				b.ReportMetric(pct, "%forwarded")
			})
		}
	}
}

// spinTarget boots a bare-metal guest spinning in a loop, served by a
// GDB stub, for the ablation microbenchmarks.
func spinTarget(b *testing.B) (*core.GDBTarget, *asm.Image) {
	b.Helper()
	im, err := asm.Assemble(asm.Options{}, asm.Source{Name: "spin.s", Text: `
_start:
spin:
    addi s0, s0, 1
    j    spin
`})
	if err != nil {
		b.Fatal(err)
	}
	ram := iss.NewRAM(1 << 20)
	if err := im.LoadInto(ram); err != nil {
		b.Fatal(err)
	}
	cpu := iss.New(iss.NewSystemBus(ram))
	cpu.Reset(im.Entry)
	target, err := core.StartGDBTarget(cpu, core.TransportTCP)
	if err != nil {
		b.Fatal(err)
	}
	return target, im
}

// BenchmarkAblationPolling isolates ablation A1: the per-clock-cycle
// synchronization cost. The wrapper pays one qRun RSP round trip
// through the host OS per cycle; the kernel-embedded scheme pays an
// in-process channel check.
func BenchmarkAblationPolling(b *testing.B) {
	b.Run("wrapper-qRun-roundtrip", func(b *testing.B) {
		target, _ := spinTarget(b)
		cl := gdbClient(target, false)
		defer func() { _ = cl.Kill() }()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := cl.RunQuantum(1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kernel-channel-poll", func(b *testing.B) {
		target, _ := spinTarget(b)
		cl := gdbClient(target, true)
		defer func() { _ = cl.Kill() }()
		if err := cl.Continue(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := cl.PollStop(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		_ = cl.Interrupt()
		_, _, _ = cl.WaitStopTimeout(time.Second)
	})
}

// BenchmarkAblationDecodeCache isolates the predecoded-instruction
// cache (DESIGN.md §5.5). The engine-* sub-benchmarks run the raw ISS
// hot loop for exactly b.N instructions, so ns/op is ns/instruction:
// cached replaces the per-step bus fetch + map-based decode with one
// array load. The scheme sub-benchmarks measure the end-to-end effect
// on a Table 1 run via harness.Params.NoDecodeCache (benchtab's
// -nodecodecache flag).
func BenchmarkAblationDecodeCache(b *testing.B) {
	engine := func(b *testing.B, cached bool) {
		im, err := asm.Assemble(asm.Options{}, asm.Source{Name: "spin.s", Text: `
_start:
spin:
    addi s0, s0, 1
    add  s1, s1, s0
    addi t0, s1, 7
    j    spin
`})
		if err != nil {
			b.Fatal(err)
		}
		ram := iss.NewRAM(1 << 20)
		if err := im.LoadInto(ram); err != nil {
			b.Fatal(err)
		}
		cpu := iss.New(iss.NewSystemBus(ram))
		cpu.SetDecodeCacheEnabled(cached)
		cpu.Reset(im.Entry)
		b.ResetTimer()
		stop, n := cpu.Run(uint64(b.N))
		if stop != iss.StopBudget || n != uint64(b.N) {
			b.Fatalf("stop = %v after %d/%d instructions", stop, n, b.N)
		}
	}
	b.Run("engine-cached", func(b *testing.B) { engine(b, true) })
	b.Run("engine-uncached", func(b *testing.B) { engine(b, false) })
	for _, scheme := range harness.Schemes {
		for _, cached := range []bool{true, false} {
			b.Run(fmt.Sprintf("%s/cache=%v", scheme, cached), func(b *testing.B) {
				p := benchParams()
				p.Scheme = scheme
				p.SimTime = 2 * sim.MS
				p.NoDecodeCache = !cached
				for i := 0; i < b.N; i++ {
					res, err := harness.Run(p)
					if err != nil {
						b.Fatal(err)
					}
					if res.Forwarded == 0 {
						b.Fatal("no traffic forwarded")
					}
				}
			})
		}
	}
}

// gdbClient attaches an RSP client to a target for the ablations.
func gdbClient(t *core.GDBTarget, buffered bool) *gdb.Client {
	return gdb.NewClient(t.HostConn, gdb.ClientOptions{UseReaderGoroutine: buffered})
}

// BenchmarkAblationTransport isolates ablation A2: moving one checksum
// result either through the GDB interface (read memory via an RSP 'm'
// transaction) or as a raw Driver-Kernel protocol message.
func BenchmarkAblationTransport(b *testing.B) {
	b.Run("gdb-m-packet", func(b *testing.B) {
		target, _ := spinTarget(b)
		cl := gdbClient(target, false)
		defer func() { _ = cl.Kill() }()
		b.SetBytes(4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cl.ReadMemory(0x100, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("driver-message", func(b *testing.B) {
		// Encode + decode one WRITE message (the kernel-side work per
		// driver transfer; socket costs are common to both schemes).
		m := core.Message{Type: core.MsgWrite, Cycles: 123, Port: "csum", Data: []byte{1, 2, 3, 4}}
		b.SetBytes(4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Encode(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("driver-message-pooled", func(b *testing.B) {
		// The steady-state path the Driver-Kernel scheme actually uses:
		// encode through the pooled scratch buffer, zero allocations.
		m := core.Message{Type: core.MsgWrite, Cycles: 123, Port: "csum", Data: []byte{1, 2, 3, 4}}
		b.SetBytes(4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := core.WriteMessage(io.Discard, m); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRunAllTable1 measures the experiment harness itself: the
// same Table 1 sweep executed sequentially and on a worker pool. The
// per-scheme results are identical (each scenario owns its kernel, ISS
// and sockets and is deterministically seeded); only wall clock
// changes, which is the point of `benchtab -parallel`.
func BenchmarkRunAllTable1(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			scens := harness.Table1Scenarios([]sim.Time{2 * sim.MS}, benchParams())
			for i := 0; i < b.N; i++ {
				outs := harness.RunAll(scens, workers)
				if err := harness.FirstError(outs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationInterruptGDB quantifies §4's argument: "Modeling an
// interrupt in the GDB-Kernel scheme would require to stop GDB
// execution at any instruction, thus degrading the performance of
// co-simulation unacceptably". Compare instruction throughput when the
// ISS free-runs under 'c' against single-stepping via RSP.
func BenchmarkAblationInterruptGDB(b *testing.B) {
	b.Run("free-run-chunk", func(b *testing.B) {
		target, _ := spinTarget(b)
		cl := gdbClient(target, false)
		defer func() { _ = cl.Kill() }()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := cl.RunQuantum(10_000); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(10_000, "instr/op")
	})
	b.Run("single-step-per-instr", func(b *testing.B) {
		target, _ := spinTarget(b)
		cl := gdbClient(target, false)
		defer func() { _ = cl.Kill() }()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cl.Step(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(1, "instr/op")
	})
}

// BenchmarkChecksumGo measures the Go reference checksum (the router
// side of the integrity check).
func BenchmarkChecksumGo(b *testing.B) {
	pkt := &router.Packet{Src: 1, Dst: 2, ID: 3, Payload: make([]uint32, 16)}
	region := pkt.Region()
	b.SetBytes(int64(len(region)))
	for i := 0; i < b.N; i++ {
		_ = router.Checksum16(region)
	}
}
